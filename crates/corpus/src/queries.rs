//! Continuous-query workload generation.
//!
//! The paper registers 1,000 queries with `k = 10` whose search terms are
//! "selected randomly from the dictionary". [`QueryWorkload`] reproduces that
//! setting (uniform term selection) and additionally offers popularity-biased
//! selection — drawing query terms from the same Zipf law as the documents —
//! which is useful for ablations because popular query terms make far more
//! documents relevant to each query.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cts_text::{TermId, TermVector};

use crate::config::WorkloadConfig;
use crate::distributions::Zipf;

/// How query terms are drawn from the vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TermSelection {
    /// Uniformly at random from the whole dictionary (the paper's setting).
    Uniform,
    /// Proportionally to term popularity (Zipf rank), with the given exponent.
    PopularityBiased,
}

/// One continuous query to register: its raw term frequencies and `k`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Raw query term frequencies `f_{Q,t}` (each selected term appears once
    /// unless the generator drew it twice, mimicking repeated words in a
    /// query string such as "white white tower").
    pub terms: TermVector,
    /// Number of result documents to maintain.
    pub k: usize,
}

impl QuerySpec {
    /// Number of distinct search terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }
}

/// Generator of query workloads.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    config: WorkloadConfig,
    vocabulary_size: usize,
    zipf_exponent: f64,
}

impl QueryWorkload {
    /// Creates a workload generator for a vocabulary of `vocabulary_size`
    /// terms.
    pub fn new(config: WorkloadConfig, vocabulary_size: usize) -> Self {
        assert!(vocabulary_size > 0, "vocabulary must be non-empty");
        assert!(
            config.query_length > 0,
            "queries must have at least one term"
        );
        assert!(config.k > 0, "k must be at least 1");
        Self {
            config,
            vocabulary_size,
            zipf_exponent: 1.0,
        }
    }

    /// Overrides the Zipf exponent used for popularity-biased selection.
    pub fn with_zipf_exponent(mut self, s: f64) -> Self {
        self.zipf_exponent = s;
        self
    }

    /// The generator's configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generates the configured number of query specifications.
    pub fn generate(&self) -> Vec<QuerySpec> {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let selection = if self.config.popularity_biased {
            TermSelection::PopularityBiased
        } else {
            TermSelection::Uniform
        };
        let zipf = if selection == TermSelection::PopularityBiased {
            Some(Zipf::new(self.vocabulary_size, self.zipf_exponent))
        } else {
            None
        };
        (0..self.config.num_queries)
            .map(|_| self.generate_one(&mut rng, zipf.as_ref()))
            .collect()
    }

    fn generate_one(&self, rng: &mut SmallRng, zipf: Option<&Zipf>) -> QuerySpec {
        let mut terms = TermVector::new();
        // Draw until the query has the configured number of *distinct* terms;
        // duplicates simply raise the frequency of the already-chosen term,
        // which matches how a repeated word in a query string behaves, but we
        // cap the number of draws to keep termination obvious.
        let mut draws = 0;
        while terms.len() < self.config.query_length && draws < self.config.query_length * 20 {
            let term = match zipf {
                Some(z) => TermId(z.sample(rng) as u32),
                None => TermId(rng.gen_range(0..self.vocabulary_size) as u32),
            };
            terms.add(term);
            draws += 1;
        }
        QuerySpec {
            terms,
            k: self.config.k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, len: usize) -> WorkloadConfig {
        WorkloadConfig {
            num_queries: n,
            query_length: len,
            k: 10,
            popularity_biased: false,
            seed: 7,
        }
    }

    #[test]
    fn generates_requested_number_of_queries() {
        let w = QueryWorkload::new(cfg(50, 4), 10_000);
        let qs = w.generate();
        assert_eq!(qs.len(), 50);
        assert!(qs.iter().all(|q| q.k == 10));
    }

    #[test]
    fn queries_have_the_requested_length() {
        let w = QueryWorkload::new(cfg(100, 10), 100_000);
        let qs = w.generate();
        assert!(qs.iter().all(|q| q.num_terms() == 10));
    }

    #[test]
    fn terms_are_within_the_vocabulary() {
        let w = QueryWorkload::new(cfg(100, 6), 500);
        let qs = w.generate();
        for q in qs {
            assert!(q.terms.iter().all(|(t, _)| (t.0 as usize) < 500));
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a = QueryWorkload::new(cfg(20, 5), 1_000).generate();
        let b = QueryWorkload::new(cfg(20, 5), 1_000).generate();
        assert_eq!(a, b);
        let c = QueryWorkload::new(
            WorkloadConfig {
                seed: 8,
                ..cfg(20, 5)
            },
            1_000,
        )
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_bias_prefers_low_ranks() {
        let uniform = QueryWorkload::new(cfg(200, 5), 100_000).generate();
        let biased = QueryWorkload::new(
            WorkloadConfig {
                popularity_biased: true,
                ..cfg(200, 5)
            },
            100_000,
        )
        .generate();
        let mean_rank = |qs: &[QuerySpec]| {
            let (sum, count) = qs
                .iter()
                .flat_map(|q| q.terms.iter())
                .fold((0u64, 0u64), |(s, c), (t, _)| (s + u64::from(t.0), c + 1));
            sum as f64 / count as f64
        };
        assert!(
            mean_rank(&biased) < mean_rank(&uniform) / 4.0,
            "biased {} vs uniform {}",
            mean_rank(&biased),
            mean_rank(&uniform)
        );
    }

    #[test]
    fn small_vocabulary_queries_terminate_even_with_duplicates() {
        // Query length 5 over a 3-term vocabulary cannot reach 5 distinct
        // terms; the generator must still terminate with ≥1 term.
        let w = QueryWorkload::new(cfg(10, 5), 3);
        let qs = w.generate();
        assert_eq!(qs.len(), 10);
        assert!(qs.iter().all(|q| q.num_terms() >= 1 && q.num_terms() <= 3));
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_is_rejected() {
        let _ = QueryWorkload::new(
            WorkloadConfig {
                k: 0,
                ..WorkloadConfig::default()
            },
            100,
        );
    }
}
