//! The synthetic document generator.
//!
//! [`SyntheticCorpus`] produces raw term-frequency vectors whose statistics
//! mimic a newswire collection: term popularity follows a Zipf law over the
//! configured vocabulary and document lengths follow a clamped log-normal.
//! The generator is deterministic for a given [`CorpusConfig`] seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use cts_text::{TermId, TermVector};

use crate::config::CorpusConfig;
use crate::distributions::{LogNormal, Zipf};
use crate::vocabulary::Vocabulary;

/// A deterministic generator of synthetic newswire-like documents.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    config: CorpusConfig,
    zipf: Zipf,
    doc_len: LogNormal,
    rng: SmallRng,
    generated: u64,
}

impl SyntheticCorpus {
    /// Creates a generator from a configuration.
    pub fn new(config: CorpusConfig) -> Self {
        assert!(config.vocabulary_size > 0, "vocabulary must be non-empty");
        assert!(
            config.min_doc_len >= 1 && config.min_doc_len <= config.max_doc_len,
            "document length bounds must satisfy 1 <= min <= max"
        );
        Self {
            zipf: Zipf::new(config.vocabulary_size, config.zipf_exponent),
            doc_len: LogNormal::new(config.doc_len_mu, config.doc_len_sigma),
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            generated: 0,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Number of documents generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Builds the matching human-readable vocabulary (used by examples).
    pub fn vocabulary(&self) -> Vocabulary {
        Vocabulary::synthetic(self.config.vocabulary_size)
    }

    /// Samples the next document's raw term-frequency vector.
    pub fn next_term_vector(&mut self) -> TermVector {
        let target_len = self.doc_len.sample(&mut self.rng).round().clamp(
            self.config.min_doc_len as f64,
            self.config.max_doc_len as f64,
        ) as usize;
        let mut v = TermVector::new();
        for _ in 0..target_len {
            let rank = self.zipf.sample(&mut self.rng);
            v.add(TermId(rank as u32));
        }
        self.generated += 1;
        v
    }

    /// Samples a term-frequency vector of exactly `occurrences` term
    /// occurrences (used by tests and micro-benchmarks that need a fixed
    /// document size).
    pub fn term_vector_with_len(&mut self, occurrences: usize) -> TermVector {
        let mut v = TermVector::new();
        for _ in 0..occurrences {
            let rank = self.zipf.sample(&mut self.rng);
            v.add(TermId(rank as u32));
        }
        self.generated += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_respect_length_bounds() {
        let mut g = SyntheticCorpus::new(CorpusConfig::small());
        for _ in 0..200 {
            let v = g.next_term_vector();
            let occurrences = v.total_occurrences() as usize;
            assert!(occurrences >= g.config().min_doc_len);
            assert!(occurrences <= g.config().max_doc_len);
            assert!(v.len() <= occurrences);
        }
        assert_eq!(g.generated(), 200);
    }

    #[test]
    fn term_ids_stay_within_vocabulary() {
        let cfg = CorpusConfig {
            vocabulary_size: 100,
            ..CorpusConfig::small()
        };
        let mut g = SyntheticCorpus::new(cfg);
        for _ in 0..50 {
            let v = g.next_term_vector();
            assert!(v.iter().all(|(t, _)| (t.0 as usize) < 100));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = SyntheticCorpus::new(CorpusConfig::small());
        let mut b = SyntheticCorpus::new(CorpusConfig::small());
        for _ in 0..20 {
            assert_eq!(a.next_term_vector(), b.next_term_vector());
        }
        let mut c = SyntheticCorpus::new(CorpusConfig {
            seed: 12345,
            ..CorpusConfig::small()
        });
        assert_ne!(a.next_term_vector(), c.next_term_vector());
    }

    #[test]
    fn popular_terms_dominate() {
        let mut g = SyntheticCorpus::new(CorpusConfig::small());
        let mut low_rank = 0u64;
        let mut high_rank = 0u64;
        for _ in 0..200 {
            let v = g.next_term_vector();
            for (t, c) in v.iter() {
                if t.0 < 20 {
                    low_rank += u64::from(c);
                } else if t.0 >= 1000 {
                    high_rank += u64::from(c);
                }
            }
        }
        // The 20 most popular terms must out-weigh the entire tail beyond
        // rank 1000 under a Zipf(1.0) law over 2000 terms.
        assert!(low_rank > high_rank, "low {low_rank} vs high {high_rank}");
    }

    #[test]
    fn fixed_length_generation() {
        let mut g = SyntheticCorpus::new(CorpusConfig::small());
        let v = g.term_vector_with_len(17);
        assert_eq!(v.total_occurrences(), 17);
    }

    #[test]
    #[should_panic(expected = "vocabulary must be non-empty")]
    fn empty_vocabulary_is_rejected() {
        let _ = SyntheticCorpus::new(CorpusConfig {
            vocabulary_size: 0,
            ..CorpusConfig::small()
        });
    }
}
