pub fn placeholder() {}
